package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out, io.Discard)
	return out.String(), err
}

func TestList(t *testing.T) {
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig12") {
		t.Errorf("-list output missing fig12:\n%s", out)
	}
}

func TestOneExperiment(t *testing.T) {
	out, err := runCLI(t, "-fig", "fig1", "-windows", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "S2") {
		t.Errorf("fig1 output missing benchmark column:\n%s", out)
	}
	csv, err := runCLI(t, "-fig", "table1", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, ",") {
		t.Errorf("-csv emitted no commas:\n%s", csv)
	}
	md, err := runCLI(t, "-fig", "table1", "-md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "|") {
		t.Errorf("-md emitted no table pipes:\n%s", md)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCLI(t, "-fig", "nonsense"); err == nil {
		t.Error("unknown experiment: expected error")
	}
	if _, err := runCLI(t); err == nil {
		t.Error("no action flags: expected error")
	}
	if _, err := runCLI(t, "-badflag"); err == nil {
		t.Error("bad flag: expected error")
	}
}
