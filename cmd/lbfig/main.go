// Command lbfig regenerates the paper's tables and figures.
//
// Usage:
//
//	lbfig -fig fig12                # one experiment
//	lbfig -all                      # everything, in paper order
//	lbfig -list                     # list experiment ids
//	lbfig -fig fig12 -paper         # full Table 1 scale (16 SMs, 50k windows)
//	lbfig -fig fig12 -csv           # emit CSV instead of aligned text
//	lbfig -all -svg -out artifacts  # also render each figure as an SVG chart
//	lbfig -windows 12               # run length in monitoring windows
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/linebacker-sim/linebacker/internal/harness"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment id (fig12, table2, ...)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		paper   = flag.Bool("paper", false, "use the full Table 1 scale (16 SMs, 50k-cycle windows) instead of the fast 4-SM configuration")
		csv     = flag.Bool("csv", false, "emit CSV")
		md      = flag.Bool("md", false, "emit markdown")
		svg     = flag.Bool("svg", false, "additionally render each experiment as an SVG chart")
		outDir  = flag.String("out", "artifacts", "directory for -svg output")
		windows = flag.Int("windows", 16, "run length in monitoring windows")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := harness.BenchConfig()
	if *paper {
		cfg = harness.PaperConfig()
	}
	r := harness.NewRunner(cfg, *windows)

	emit := func(t *harness.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *md:
			fmt.Println(t.Markdown())
		default:
			t.Fprint(os.Stdout)
		}
		if *svg {
			chart, err := t.Chart()
			if err != nil {
				fmt.Fprintf(os.Stderr, "lbfig: %s: %v (skipped)\n", t.ID, err)
				return
			}
			doc, err := chart.SVG()
			if err != nil {
				fmt.Fprintf(os.Stderr, "lbfig: %s: %v\n", t.ID, err)
				return
			}
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "lbfig:", err)
				os.Exit(1)
			}
			path := fmt.Sprintf("%s/%s.svg", *outDir, t.ID)
			if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "lbfig:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	switch {
	case *all:
		for _, e := range harness.Experiments() {
			emit(e.Run(r))
		}
	case *fig != "":
		e, ok := harness.ExperimentByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "lbfig: unknown experiment %q (use -list)\n", *fig)
			os.Exit(1)
		}
		emit(e.Run(r))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
