// Command lbfig regenerates the paper's tables and figures.
//
// Usage:
//
//	lbfig -fig fig12                # one experiment
//	lbfig -all                      # everything, in paper order
//	lbfig -list                     # list experiment ids
//	lbfig -fig fig12 -paper         # full Table 1 scale (16 SMs, 50k windows)
//	lbfig -fig fig12 -csv           # emit CSV instead of aligned text
//	lbfig -all -svg -out artifacts  # also render each figure as an SVG chart
//	lbfig -windows 12               # run length in monitoring windows
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/linebacker-sim/linebacker/internal/cliutil"
	"github.com/linebacker-sim/linebacker/internal/harness"
)

func main() {
	os.Exit(cliutil.Exit(os.Stderr, "lbfig", run(os.Args[1:], os.Stdout, os.Stderr)))
}

// run is the testable entry point: flag parsing and output against
// injectable streams, errors returned instead of os.Exit.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbfig", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig     = fs.String("fig", "", "experiment id (fig12, table2, ...)")
		all     = fs.Bool("all", false, "run every experiment")
		list    = fs.Bool("list", false, "list experiment ids")
		paper   = fs.Bool("paper", false, "use the full Table 1 scale (16 SMs, 50k-cycle windows) instead of the fast 4-SM configuration")
		csv     = fs.Bool("csv", false, "emit CSV")
		md      = fs.Bool("md", false, "emit markdown")
		svg     = fs.Bool("svg", false, "additionally render each experiment as an SVG chart")
		outDir  = fs.String("out", "artifacts", "directory for -svg output")
		windows = fs.Int("windows", 16, "run length in monitoring windows")
		timeout = fs.Duration("timeout", 0, "wall-clock limit per simulation (0 = none)")
		workers = fs.Int("workers", 1, "SM-stepping threads per simulation (0 = GOMAXPROCS); results are identical at any count")
		strict  = fs.Bool("strict", false, "tick every cycle instead of event-driven cycle skipping; results are identical in both modes")
	)
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapParse(err)
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := harness.BenchConfig()
	if *paper {
		cfg = harness.PaperConfig()
	}
	cfg.GPU.Workers = *workers
	cfg.Strict = *strict
	r := harness.NewRunner(cfg, *windows)
	r.Timeout = *timeout

	emit := func(t *harness.Table) error {
		switch {
		case *csv:
			fmt.Fprint(stdout, t.CSV())
		case *md:
			fmt.Fprintln(stdout, t.Markdown())
		default:
			t.Fprint(stdout)
		}
		if *svg {
			chart, err := t.Chart()
			if err != nil {
				fmt.Fprintf(stderr, "lbfig: %s: %v (skipped)\n", t.ID, err)
				return nil
			}
			doc, err := chart.SVG()
			if err != nil {
				fmt.Fprintf(stderr, "lbfig: %s: %v\n", t.ID, err)
				return nil
			}
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := fmt.Sprintf("%s/%s.svg", *outDir, t.ID)
			if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "wrote %s\n", path)
		}
		return nil
	}

	// Experiments run under the harness's fault barrier: a failed point
	// surfaces as a *harness.RunError (with its diagnostic snapshot) on
	// stderr and exit status 1 instead of a crashed process.
	switch {
	case *all:
		for _, e := range harness.Experiments() {
			tab, err := e.RunSafe(r)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			if err := emit(tab); err != nil {
				return err
			}
		}
		return nil
	case *fig != "":
		e, ok := harness.ExperimentByID(*fig)
		if !ok {
			return cliutil.Usagef("unknown experiment %q (use -list)", *fig)
		}
		tab, err := e.RunSafe(r)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		return emit(tab)
	default:
		fs.Usage()
		return cliutil.Usagef("one of -fig, -all, -list required")
	}
}
