#!/usr/bin/env python3
"""Extract the experiment tables printed by `go test -bench=. -v` (b.Log
output) into a clean experiments.txt. Usage:

    python3 artifacts/extract.py bench_output.txt > artifacts/experiments.txt
"""
import re
import sys

src = open(sys.argv[1]).read().splitlines()
out = []
in_table = False
for line in src:
    # b.Log lines are indented; table blocks start with "== id: title ==".
    stripped = line.strip()
    m = re.match(r"^(== [a-z0-9-]+: .*==)$", stripped)
    if m:
        in_table = True
        out.append(stripped)
        continue
    if in_table:
        if (stripped == "" or stripped.startswith("--- ") or
                stripped.startswith("===") or stripped.startswith("Benchmark")):
            in_table = False
            out.append("")
            continue
        out.append(stripped)
print("\n".join(out))
