// Package linebacker is the public API of the Linebacker reproduction: a
// cycle-level GPU simulator (SMs with GTO schedulers, L1/L2/DRAM hierarchy,
// banked register file) plus the Linebacker victim-caching architecture of
// Oh et al., ISCA 2019, and the comparison schemes the paper evaluates
// against (Best-SWL, PCAL, CERF, CacheExt).
//
// Quick start:
//
//	cfg := linebacker.FastConfig()
//	bench, _ := linebacker.Benchmark("S2")
//	pol, _ := linebacker.NewScheme("linebacker")
//	res, err := linebacker.Run(cfg, bench.Kernel, pol, 16)
//	fmt.Println(res.IPC())
//
// Custom kernels are described declaratively with NewKernel and LoadSpec;
// see examples/customkernel.
package linebacker

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/linebacker-sim/linebacker/internal/chaos"
	"github.com/linebacker-sim/linebacker/internal/check"
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/energy"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// Config is the simulated GPU + Linebacker configuration (Tables 1 and 3).
type Config = config.Config

// Policy is a cache/scheduling scheme attached to a run.
type Policy = sim.Policy

// Result aggregates a finished simulation.
type Result = sim.Result

// GPU is a configured simulation instance.
type GPU = sim.GPU

// Kernel describes a synthetic workload.
type Kernel = workload.Kernel

// LoadSpec describes one static load or store of a kernel.
type LoadSpec = workload.LoadSpec

// Workload pattern and scope constants, re-exported for kernel authors.
const (
	Streaming = workload.Streaming
	Tiled     = workload.Tiled
	Irregular = workload.Irregular

	Global  = workload.Global
	PerSM   = workload.PerSM
	PerCTA  = workload.PerCTA
	PerWarp = workload.PerWarp
)

// EnergyBreakdown itemises a run's energy.
type EnergyBreakdown = energy.Breakdown

// DefaultConfig returns the paper's full Table 1 configuration
// (16 SMs, 50 000-cycle monitoring windows).
func DefaultConfig() Config { return config.Default() }

// FastConfig returns the 4-SM experiment configuration with shared
// resources scaled proportionally — the configuration the repository's
// benchmarks and EXPERIMENTS.md use.
func FastConfig() Config {
	cfg := config.Default()
	cfg.GPU.NumSMs = 4
	cfg.GPU.DRAMBandwidthGBs = 176.25
	cfg.GPU.DRAMChannels = 4
	cfg.GPU.L2Bytes = 512 * 1024
	cfg.LB.WindowCycles = 12500
	return cfg
}

// Trace is a recorded per-warp memory trace, replayable through the engine.
type Trace = workload.Trace

// TraceRecorder writes the replayable trace format from a running
// simulation (attach Observe to sim.SM.Probe via RecordTrace).
type TraceRecorder = workload.TraceRecorder

// ParseTrace reads the text trace format: one "<warp> <pc> <L|S> <addr>"
// event per line. Build a replay kernel with Trace.Kernel.
func ParseTrace(r io.Reader) (*Trace, error) { return workload.ParseTrace(r) }

// NewTraceRecorder builds a recorder for RecordTrace.
func NewTraceRecorder(w io.Writer) *TraceRecorder { return workload.NewTraceRecorder(w) }

// RecordTrace attaches the recorder to every SM of an un-started simulation
// so the run's full memory trace is written in the replayable format.
func RecordTrace(g *GPU, rec *TraceRecorder) {
	for _, sm := range g.SMs() {
		sm.Probe = func(warpSlot int, pc uint32, line memtypes.LineAddr, isStore bool, cycle int64) {
			rec.Observe(warpSlot, pc, line, isStore)
		}
	}
}

// ParseKernelJSON builds a kernel from its JSON description (see
// examples/customkernel/sparse-solver.json for the format).
func ParseKernelJSON(data []byte) (*Kernel, error) {
	return workload.ParseKernelJSON(data)
}

// KernelJSON serialises a kernel built with NewKernel back to JSON.
func KernelJSON(k *Kernel, computePerLoad, computeLatency int) ([]byte, error) {
	return workload.KernelJSON(k, computePerLoad, computeLatency)
}

// NewKernel assembles a synthetic kernel; see workload.NewKernel.
func NewKernel(name string, loads, stores []LoadSpec, computePerLoad, computeLatency, iterations, warpsPerCTA, regsPerThread, gridCTAs int) *Kernel {
	return workload.NewKernel(name, loads, stores, computePerLoad, computeLatency, iterations, warpsPerCTA, regsPerThread, gridCTAs)
}

// Benchmarks returns the 20 Table 2 application models.
func Benchmarks() []workload.Benchmark { return workload.All() }

// Benchmark looks up one Table 2 application model by code (S2, BI, ...).
func Benchmark(name string) (workload.Benchmark, bool) { return workload.ByName(name) }

// SchemeNames lists the scheme specifiers NewScheme accepts.
func SchemeNames() []string {
	return []string{
		"baseline", "swl:<n>", "ccws", "pcal", "cerf", "cacheext",
		"linebacker", "svc", "vc", "lb+cacheext", "pcal+svc", "pcal+cerf",
	}
}

// NewScheme builds a policy from a specifier:
//
//	baseline      Table 1 GPU, GTO scheduling
//	swl:<n>       static CTA limit of n per SM (sweep n for Best-SWL)
//	ccws          cache-conscious wavefront scheduling (MICRO '12)
//	pcal          priority-based cache allocation (HPCA '15)
//	cerf          cache-emulated register file (MICRO '16)
//	cacheext      idealised L1 enlarged by unused register bytes
//	linebacker    the full Linebacker architecture
//	svc           selective victim caching only (no CTA throttling)
//	vc            preserve-all victim caching (no selection, no throttling)
//	lb+cacheext   Linebacker on top of the CacheExt idealisation
//	pcal+svc      PCAL combined with selective victim caching
//	pcal+cerf     PCAL combined with CERF
func NewScheme(spec string) (Policy, error) {
	switch {
	case spec == "baseline":
		return sim.Baseline{}, nil
	case strings.HasPrefix(spec, "swl:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "swl:"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("linebacker: bad SWL limit in %q", spec)
		}
		return schemes.SWL{Limit: n}, nil
	case spec == "ccws":
		return schemes.CCWS{}, nil
	case spec == "pcal":
		return schemes.PCAL{}, nil
	case spec == "cerf":
		return schemes.CERF{}, nil
	case spec == "cacheext":
		return schemes.CacheExt{}, nil
	case spec == "linebacker" || spec == "lb":
		return core.New(), nil
	case spec == "svc":
		return core.NewWith(core.Options{Selection: true}), nil
	case spec == "vc":
		return core.NewWith(core.Options{Selection: false}), nil
	case spec == "lb+cacheext":
		return schemes.Combine("LB+CacheExt", schemes.CacheExt{}, core.New()), nil
	case spec == "pcal+svc":
		return schemes.Combine("PCAL+SVC", schemes.PCAL{},
			core.NewWith(core.Options{Selection: true})), nil
	case spec == "pcal+cerf":
		return schemes.Combine("PCAL+CERF", schemes.CERF{}, schemes.PCAL{}), nil
	default:
		return nil, fmt.Errorf("linebacker: unknown scheme %q (see SchemeNames)", spec)
	}
}

// New builds a simulation of the kernel under the policy without running it
// (for callers that want to step or probe). When cfg.Check is set, the
// runtime invariant checker rides along and any conservation-law violation
// aborts the run. When cfg.Chaos arms a fault, the deterministic chaos
// injector rides along too (see internal/chaos).
func New(cfg Config, k *Kernel, pol Policy) (*GPU, error) {
	g, err := sim.New(cfg, k, pol)
	if err != nil {
		return nil, err
	}
	if cfg.Check {
		check.Attach(g)
	}
	chaos.Attach(g)
	return g, nil
}

// Run simulates the kernel under the policy for the given number of
// monitoring windows (0 = run the kernel to completion) and collects the
// result.
func Run(cfg Config, k *Kernel, pol Policy, windows int) (*Result, error) {
	return RunContext(context.Background(), cfg, k, pol, windows)
}

// RunContext is Run with cooperative cancellation: the simulation checks
// ctx at every window boundary and aborts with the cancellation cause. A
// cancelled run returns no partial result.
func RunContext(ctx context.Context, cfg Config, k *Kernel, pol Policy, windows int) (*Result, error) {
	g, err := New(cfg, k, pol)
	if err != nil {
		return nil, err
	}
	if _, err := g.RunCtx(ctx, int64(windows)*int64(cfg.LB.WindowCycles)); err != nil {
		return nil, err
	}
	return g.Collect(), nil
}

// Energy computes the event-energy breakdown of a result.
func Energy(cfg *Config, r *Result) EnergyBreakdown {
	return energy.Compute(cfg, r)
}

// EnergyPerInstruction returns joules per retired warp instruction, the
// fixed-work-comparable energy metric.
func EnergyPerInstruction(cfg *Config, r *Result) float64 {
	return energy.PerInstruction(cfg, r)
}
