package linebacker

// Machine-readable benchmark trajectory. The Benchmark* wrappers expose the
// benchkit tiers to plain `go test -bench`:
//
//	go test -bench 'Micro' -benchmem .          # hot-path tier
//	go test -bench 'Macro' -benchtime=1x .      # one full Fig. 12 bench run
//
// TestBenchTrajectory runs the same bodies through testing.Benchmark and
// writes the results as JSON (the BENCH_PR4.json artifact):
//
//	go test -run TestBenchTrajectory -benchjson BENCH_PR4.json .
//	go test -run TestBenchTrajectory -benchjson BENCH_PR4.json \
//	    -benchbaseline baseline.json -benchlabel PR4 .
//
// -benchbaseline merges a previous emission's "current" section in as
// "baseline", so one artifact carries both sides of a before/after
// comparison. testing.Benchmark honours -benchtime, so CI smoke runs use
// -benchtime=1x (compile + sanity, not timing).

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/benchkit"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

var (
	benchJSONOut  = flag.String("benchjson", "", "write machine-readable benchmark results to this file")
	benchBaseline = flag.String("benchbaseline", "", "merge this previous -benchjson emission as the baseline section")
	benchLabel    = flag.String("benchlabel", "dev", "label for the current emission (e.g. pre-PR4, PR4)")
)

// Micro tier: the per-cycle hot paths.
func BenchmarkMicroCacheLoad(b *testing.B)  { benchkit.CacheLoad(b) }
func BenchmarkMicroCacheStore(b *testing.B) { benchkit.CacheStore(b) }
func BenchmarkMicroGPUStep(b *testing.B)    { benchkit.GPUStep(b) }
func BenchmarkMicroIcntLink(b *testing.B)   { benchkit.IcntLink(b) }

// Macro tier: one full Figure 12 bench run (S2 through the figure's policy
// set on a fresh runner).
func BenchmarkMacroFig12Bench(b *testing.B) { benchkit.MacroFig12Bench(b) }

// Run-mode tier: the same macro under strict per-cycle ticking, and on the
// full Table 1 paper machine in both modes (DESIGN.md §10). The paper pair
// carries the headline strict/skip ratio — the 4-SM fast config is nearly
// issue-saturated and skips little by construction.
func BenchmarkMacroFig12Strict(b *testing.B)      { benchkit.MacroFig12BenchStrict(b) }
func BenchmarkMacroFig12Paper(b *testing.B)       { benchkit.MacroFig12PaperBench(false)(b) }
func BenchmarkMacroFig12PaperStrict(b *testing.B) { benchkit.MacroFig12PaperBench(true)(b) }

// Scaling tier: the same fig12 run at fixed intra-run worker counts
// (DESIGN.md §9). Results are bit-identical across the curve; only
// wall-clock may move.
func BenchmarkScalingFig12Workers2(b *testing.B) { benchkit.MacroFig12BenchWorkers(2)(b) }
func BenchmarkScalingFig12Workers4(b *testing.B) { benchkit.MacroFig12BenchWorkers(4)(b) }

// Twin tier: one in-envelope analytical estimate on a pre-calibrated model
// versus the cycle-level run that answers the same question. Their ratio is
// the artifact's twin_speedup — the factor the interactive tier buys.
func BenchmarkTwinQuery(b *testing.B)    { benchkit.TwinQuery(b) }
func BenchmarkTwinPointSim(b *testing.B) { benchkit.TwinPointSim(b) }

// benchMetrics is one benchmark's record in the JSON artifact.
type benchMetrics struct {
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	Iterations      int     `json:"iterations"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
}

// benchSection is one side (baseline or current) of the artifact.
type benchSection struct {
	Label   string                  `json:"label"`
	Benches map[string]benchMetrics `json:"benches"`
}

// benchFile is the BENCH_PR4.json schema. SkipRatios (added with the
// cycle-skipping engine) records, per Table 2 benchmark, the fraction of
// SM-cycles a skipping run serviced through the closed-form sleep path on
// the paper machine — the structural explanation for the runmode/ tier's
// wall-clock gap.
type benchFile struct {
	Schema     string             `json:"schema"`
	Go         string             `json:"go"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Baseline   *benchSection      `json:"baseline,omitempty"`
	Current    benchSection       `json:"current"`
	SkipRatios map[string]float64 `json:"skip_ratios,omitempty"`
	// TwinSpeedup is twin/point_sim ns_per_op over twin/estimate_query
	// ns_per_op: how many times cheaper one in-envelope analytical estimate
	// is than the cycle-level run answering the same question.
	TwinSpeedup float64 `json:"twin_speedup,omitempty"`
}

// trajectoryTiers maps artifact bench names to their bodies. GPUStep's op is
// one simulated cycle, so it additionally reports sim-cycles/sec.
var trajectoryTiers = []struct {
	name      string
	body      func(*testing.B)
	simCycles bool
}{
	{"micro/cache_load", benchkit.CacheLoad, false},
	{"micro/cache_store", benchkit.CacheStore, false},
	{"micro/gpu_step", benchkit.GPUStep, true},
	{"micro/icnt_link", benchkit.IcntLink, false},
	{"macro/fig12_bench", benchkit.MacroFig12Bench, false},
	{"runmode/fig12_strict", benchkit.MacroFig12BenchStrict, false},
	{"runmode/fig12_paper_skipping", benchkit.MacroFig12PaperBench(false), false},
	{"runmode/fig12_paper_strict", benchkit.MacroFig12PaperBench(true), false},
	{"scaling/fig12_workers1", benchkit.MacroFig12BenchWorkers(1), false},
	{"scaling/fig12_workers2", benchkit.MacroFig12BenchWorkers(2), false},
	{"scaling/fig12_workers4", benchkit.MacroFig12BenchWorkers(4), false},
	{"scaling/fig12_workers8", benchkit.MacroFig12BenchWorkers(8), false},
	{"twin/estimate_query", benchkit.TwinQuery, false},
	{"twin/point_sim", benchkit.TwinPointSim, false},
}

// TestBenchTrajectory emits the benchmark trajectory artifact. Skipped
// unless -benchjson names an output file.
func TestBenchTrajectory(t *testing.T) {
	if *benchJSONOut == "" {
		t.Skip("no -benchjson output file given")
	}
	out := benchFile{
		Schema:     "linebacker-bench/v1",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Current:    benchSection{Label: *benchLabel, Benches: map[string]benchMetrics{}},
	}
	if *benchBaseline != "" {
		data, err := os.ReadFile(*benchBaseline)
		if err != nil {
			t.Fatalf("reading baseline: %v", err)
		}
		var prev benchFile
		if err := json.Unmarshal(data, &prev); err != nil {
			t.Fatalf("parsing baseline %s: %v", *benchBaseline, err)
		}
		out.Baseline = &benchSection{Label: prev.Current.Label, Benches: prev.Current.Benches}
	}
	for _, tier := range trajectoryTiers {
		res := testing.Benchmark(tier.body)
		m := benchMetrics{
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		}
		if tier.simCycles && m.NsPerOp > 0 {
			m.SimCyclesPerSec = 1e9 / m.NsPerOp
		}
		out.Current.Benches[tier.name] = m
		t.Logf("%-22s %12.1f ns/op %8d allocs/op %10d B/op (n=%d)",
			tier.name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.Iterations)
	}
	query, sim1 := out.Current.Benches["twin/estimate_query"], out.Current.Benches["twin/point_sim"]
	if query.NsPerOp > 0 && sim1.NsPerOp > 0 {
		out.TwinSpeedup = sim1.NsPerOp / query.NsPerOp
		t.Logf("twin speedup: one estimate is %.0fx cheaper than its cycle-level run", out.TwinSpeedup)
	}
	out.SkipRatios = map[string]float64{}
	for _, bench := range workload.Names() {
		ratio, err := benchkit.SkipRatio(harness.PaperConfig(), bench, sim.Baseline{}, 4)
		if err != nil {
			t.Fatalf("skip ratio %s: %v", bench, err)
		}
		out.SkipRatios[bench] = ratio
		t.Logf("skip ratio %-4s %5.1f%%", bench, 100*ratio)
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchJSONOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *benchJSONOut)
}
